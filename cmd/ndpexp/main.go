// Command ndpexp regenerates the paper's evaluation: every figure and
// table of the NDPage paper (DATE 2025), printed as aligned text and
// written as CSV under -out.
//
// Usage:
//
//	ndpexp                         # all figures, full scale (minutes)
//	ndpexp -quick                  # all figures, reduced scale
//	ndpexp -figs fig12,fig14       # a subset
//	ndpexp -figs mlp-sensitivity   # the core-MLP sweep (non-blocking cores)
//	ndpexp -workloads rnd,pr,gen   # a workload subset
//	ndpexp -cache results/.cache   # persist runs; re-runs simulate nothing new
//	ndpexp -cache http://host:8947 # share runs through an ndpserve instance
//
// With -cache, every simulation's result lands in the cache keyed by
// its configuration's content hash, so an interrupted regeneration
// (Ctrl-C cancels cleanly) resumes where it stopped and repeated
// regenerations at the same budgets perform zero simulations. A
// directory keeps the cache private to this machine; an http(s):// URL
// points at a shared ndpserve instance instead — warm keys are fetched
// from the server, cold runs execute server-side with singleflight
// dedupe (identical configurations from any number of clients cost one
// simulation), and progress lines report server runs as "done" and
// served keys as "cached" exactly like the local cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"ndpage"
	"ndpage/internal/fault"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced scale (faster, noisier)")
		figsArg   = flag.String("figs", "all", "comma-separated: fig4,fig5,fig6,fig7,fig8,motivation,pwc,fig12,fig13,fig14,ablation (plus extras: mechanism-comparison,pwc-sensitivity,hbm-sensitivity,walker-sensitivity,mlp-sensitivity,population-sensitivity,oversubscription)")
		wlArg     = flag.String("workloads", "", "comma-separated workload subset: builtin names or trace:<file> replays (default: all 11)")
		outDir    = flag.String("out", "results", "directory for CSV output (empty = no files)")
		cacheDir  = flag.String("cache", "", "persistent run cache: a directory, or the http(s):// URL of a shared ndpserve instance (empty = in-memory only)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulations (0 = auto)")
		shards    = flag.Int("shards", 0, "pin runs to N shard goroutines by content key for a reproducible schedule (-1 = one per CPU, 0 = off: completion-ordered pool)")
		instr     = flag.Uint64("instructions", 0, "measured ops per core (0 = default)")
		footprint = flag.Uint64("footprint", 0, "dataset bytes (0 = scaled default)")
		chaosSeed = flag.Int64("chaos-seed", 0, "inject deterministic seeded faults into the -cache path (transport resets/5xx/truncation for a remote cache, torn writes/latency for a directory cache; 0 = off)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *shards < 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	e := &ndpage.Experiments{
		Instructions: *instr,
		Footprint:    *footprint,
		Parallel:     *parallel,
		Shards:       *shards,
		Progress:     os.Stderr,
		Context:      ctx,
	}
	var chaos *fault.Plan
	if *cacheDir != "" {
		store, plan, err := openCache(ctx, *cacheDir, *chaosSeed)
		if err != nil {
			fatal(err)
		}
		e.Cache = store
		chaos = plan
	} else if *chaosSeed != 0 {
		fatal(fmt.Errorf("-chaos-seed needs a -cache path to inject faults into"))
	}
	if *quick {
		if e.Instructions == 0 {
			e.Instructions = 60_000
		}
		e.Warmup = 10_000
	}
	if *wlArg != "" {
		e.Workloads = strings.Split(*wlArg, ",")
	}

	type figure struct {
		name string
		run  func() (*ndpage.Table, error)
	}
	figures := []figure{
		{"fig4", e.Fig4}, {"fig5", e.Fig5}, {"fig6", e.Fig6},
		{"fig7", e.Fig7}, {"fig8", e.Fig8},
		{"motivation", e.Motivation}, {"pwc", e.PWCRates},
		{"fig12", e.Fig12}, {"fig13", e.Fig13}, {"fig14", e.Fig14},
		{"ablation", e.Ablation},
	}
	extras := []figure{
		{"mechanism-comparison", e.MechanismComparison},
		{"pwc-sensitivity", e.PWCSensitivity},
		{"hbm-sensitivity", e.HBMChannelSensitivity},
		{"walker-sensitivity", e.WalkerWidthSensitivity},
		{"mlp-sensitivity", e.MLPSensitivity},
		{"population-sensitivity", e.PopulationSensitivity},
		{"oversubscription", e.OversubscriptionStudy},
	}
	if *figsArg != "all" {
		figures = append(figures, extras...)
	}

	want := map[string]bool{}
	if *figsArg != "all" {
		for _, f := range strings.Split(*figsArg, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	for _, f := range figures {
		if len(want) > 0 && !want[f.name] {
			continue
		}
		t0 := time.Now()
		tab, err := f.run()
		if err != nil {
			fatal(err)
		}
		fmt.Println(tab)
		fmt.Printf("[%s in %v]\n\n", f.name, time.Since(t0).Round(time.Millisecond))
		if *outDir != "" {
			path := filepath.Join(*outDir, f.name+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("total %v\n", time.Since(start).Round(time.Second))
	if chaos != nil {
		fmt.Fprintf(os.Stderr, "chaos: seed %d, %d faults injected (%s)\n",
			chaos.Seed(), chaos.Total(), chaos.Counts())
	}
}

// openCache resolves the -cache argument: an http(s):// URL selects a
// shared ndpserve instance (cold runs execute server-side, deduplicated
// across every client), anything else a local cache directory. A
// non-zero chaosSeed threads a deterministic fault injector into the
// chosen path — faulty transport for a remote cache, faulty store for a
// directory — so the pipeline's resilience is exercised end to end.
func openCache(ctx context.Context, arg string, chaosSeed int64) (ndpage.Store, *fault.Plan, error) {
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		store, err := ndpage.NewRemoteStore(arg)
		if err != nil {
			return nil, nil, err
		}
		store.Context = ctx // Ctrl-C aborts in-flight requests and 429 retry waits
		if chaosSeed != 0 {
			plan := fault.ClientPlan(chaosSeed)
			store.Client = &http.Client{Transport: &fault.Transport{Plan: plan}}
			return store, plan, nil
		}
		return store, nil, nil
	}
	ds, err := ndpage.NewDirStore(arg)
	if err != nil {
		return nil, nil, err
	}
	if chaosSeed != 0 {
		plan := fault.LocalPlan(chaosSeed)
		return &fault.Store{Inner: ds, Plan: plan, Dir: ds.Dir()}, plan, nil
	}
	return ds, nil, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndpexp:", err)
	os.Exit(1)
}
