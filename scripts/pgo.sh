#!/usr/bin/env bash
# pgo.sh — regenerate the committed PGO profile (cmd/ndpsim/default.pgo).
#
# Profile-guided optimization needs a profile that looks like production.
# For this simulator "production" is the Table II sweep: a mix of
# mechanisms (the hot Flattened paths and the ECH/Radix baselines), the
# graph workloads that dominate the paper, and both blocking and MLP
# core models. This script runs a representative slice of that matrix
# under -cpuprofile, merges the profiles with `go tool pprof -proto`,
# and writes the merge to cmd/ndpsim/default.pgo where `go build`
# (default -pgo=auto) picks it up for every subsequent build.
#
# Usage:
#   scripts/pgo.sh            # regenerate cmd/ndpsim/default.pgo
#   PGO_INSTR=N scripts/pgo.sh  # override per-run measured ops
#
# The profile is committed: CI and plain `go build ./cmd/ndpsim` consume
# it without rerunning this script. Regenerate after changing hot-path
# code shape (see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

INSTR="${PGO_INSTR:-2000000}"
OUT="cmd/ndpsim/default.pgo"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Build WITHOUT a profile: profiling a PGO build would feed back the
# previous profile's inlining decisions.
go build -pgo=off -o "$TMP/ndpsim" ./cmd/ndpsim

i=0
profile() { # profile <args...>
    i=$((i + 1))
    echo "pgo: run $i: $*" >&2
    "$TMP/ndpsim" -cpuprofile "$TMP/prof$i.pb.gz" \
        -instructions "$INSTR" "$@" >/dev/null
}

# Representative Table II slice: NDPage (Flattened hot paths) on the
# three workload shapes that stress translation differently, the two
# strongest baselines, and a multi-core MLP run for the engine/walker
# contention paths.
profile -mech NDPage  -workload bfs
profile -mech NDPage  -workload rnd
profile -mech NDPage  -workload dlrm -cores 4 -mlp 4
profile -mech ECH     -workload bfs
profile -mech Radix   -workload pr
profile -mech NDPage  -workload xs -cores 8 -shared-walker -walker-width 4

go tool pprof -proto "$TMP"/prof*.pb.gz > "$OUT"
echo "pgo: wrote $OUT ($(wc -c < "$OUT") bytes from $i runs)" >&2
