#!/usr/bin/env bash
# check-docs.sh — the CI docs job: (1) every relative markdown link in
# the documentation set resolves to a file in the repo; (2) every CLI
# flag the docs mention next to a tool name actually exists in that
# tool's main.go. Pure grep/sed, no network.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS="README.md DESIGN.md EXPERIMENTS.md WORKLOADS.md"
fail=0

# --- 1. Relative link check -------------------------------------------------
for doc in $DOCS; do
  [ -f "$doc" ] || { echo "FAIL: $doc missing"; fail=1; continue; }
  # Extract markdown link targets: [text](target). Skip absolute URLs
  # and intra-page anchors; strip #anchor suffixes from file targets.
  targets=$(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' || true)
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "FAIL: $doc links to missing path: $target"
      fail=1
    fi
  done
done

# --- 2. CLI flag check ------------------------------------------------------
# Defined flags of a tool: the first string literal of each
# flag.X("name", ...) / fs.XVar(&v, "name", ...) call in its main.go.
defined_flags() {
  {
    sed -nE 's/.*(String|Bool|Int64|Int|Uint64|Duration)\("([a-z][a-z-]*)".*/\2/p' "cmd/$1/main.go"
    sed -nE 's/.*(String|Bool|Int64|Int|Uint64|Duration)Var\([^,]+, *"([a-z][a-z-]*)".*/\2/p' "cmd/$1/main.go"
  } | sort -u
}

# Per docs line: union the defined flags of every tool the line
# mentions; every -flag token on the line must be in that union.
while IFS= read -r line; do
  tools=""
  for tool in ndpsim ndpexp ndptrace ndpserve; do
    if echo "$line" | grep -qE "(^|[^a-z])$tool([^a-z]|\$)"; then
      tools="$tools $tool"
    fi
  done
  [ -n "$tools" ] || continue
  defined="h help"
  for tool in $tools; do
    defined="$defined $(defined_flags "$tool" | tr '\n' ' ')"
  done
  flags=$(echo "$line" | grep -oE '(^|[ `(])-[a-z][a-z-]*' | sed -E 's/^[ `(]*-//' | sort -u || true)
  for f in $flags; do
    if ! echo "$defined" | tr ' ' '\n' | grep -qx "$f"; then
      echo "FAIL: docs mention flag -$f next to$tools, which defines no such flag: $line"
      fail=1
    fi
  done
done < <(cat $DOCS)

# --- 3. Mechanism surface documented ----------------------------------------
# The mechanism zoo is user-facing through two CLIs: every selectable
# mechanism name, the comparison figure, and ndpsim's mechanism knobs
# must appear both in the tool (flag help / extras list) and in the
# docs, so neither side can drift silently.
for name in Radix ECH HugePage NDPage Ideal FlattenOnly BypassOnly Victima NMT PCAX; do
  if ! grep -q "$name" cmd/ndpsim/main.go; then
    echo "FAIL: mechanism $name missing from ndpsim's -mech help"
    fail=1
  fi
  if ! cat $DOCS | grep -qw "$name"; then
    echo "FAIL: mechanism $name undocumented in $DOCS"
    fail=1
  fi
done
if ! grep -q 'mechanism-comparison' cmd/ndpexp/main.go; then
  echo "FAIL: ndpexp does not list the mechanism-comparison figure"
  fail=1
fi
if ! cat $DOCS | grep -q 'mechanism-comparison'; then
  echo "FAIL: ndpexp -figs mechanism-comparison undocumented in $DOCS"
  fail=1
fi
for f in victima-gate identity-promote pcx-entries; do
  if ! grep -q "\"$f\"" cmd/ndpsim/main.go; then
    echo "FAIL: ndpsim defines no -$f flag"
    fail=1
  fi
  if ! cat $DOCS | grep -q -- "-$f"; then
    echo "FAIL: ndpsim -$f undocumented in $DOCS"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs check failed"
  exit 1
fi
echo "docs check ok: links resolve, mentioned CLI flags exist"
