#!/usr/bin/env bash
# check-docs.sh — the CI docs job: (1) every relative markdown link in
# the documentation set resolves to a file in the repo; (2) every CLI
# flag the docs mention next to a tool name actually exists in that
# tool's main.go. Pure grep/sed, no network.
set -euo pipefail
cd "$(dirname "$0")/.."

DOCS="README.md DESIGN.md EXPERIMENTS.md WORKLOADS.md"
fail=0

# --- 1. Relative link check -------------------------------------------------
for doc in $DOCS; do
  [ -f "$doc" ] || { echo "FAIL: $doc missing"; fail=1; continue; }
  # Extract markdown link targets: [text](target). Skip absolute URLs
  # and intra-page anchors; strip #anchor suffixes from file targets.
  targets=$(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//' || true)
  for target in $targets; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$path" ]; then
      echo "FAIL: $doc links to missing path: $target"
      fail=1
    fi
  done
done

# --- 2. CLI flag check ------------------------------------------------------
# Defined flags of a tool: the first string literal of each
# flag.X("name", ...) / fs.XVar(&v, "name", ...) call in its main.go.
defined_flags() {
  {
    sed -nE 's/.*(String|Bool|Int64|Int|Uint64|Duration)\("([a-z][a-z-]*)".*/\2/p' "cmd/$1/main.go"
    sed -nE 's/.*(String|Bool|Int64|Int|Uint64|Duration)Var\([^,]+, *"([a-z][a-z-]*)".*/\2/p' "cmd/$1/main.go"
  } | sort -u
}

# Per docs line: union the defined flags of every tool the line
# mentions; every -flag token on the line must be in that union.
while IFS= read -r line; do
  tools=""
  for tool in ndpsim ndpexp ndptrace ndpserve; do
    if echo "$line" | grep -qE "(^|[^a-z])$tool([^a-z]|\$)"; then
      tools="$tools $tool"
    fi
  done
  [ -n "$tools" ] || continue
  defined="h help"
  for tool in $tools; do
    defined="$defined $(defined_flags "$tool" | tr '\n' ' ')"
  done
  flags=$(echo "$line" | grep -oE '(^|[ `(])-[a-z][a-z-]*' | sed -E 's/^[ `(]*-//' | sort -u || true)
  for f in $flags; do
    if ! echo "$defined" | tr ' ' '\n' | grep -qx "$f"; then
      echo "FAIL: docs mention flag -$f next to$tools, which defines no such flag: $line"
      fail=1
    fi
  done
done < <(cat $DOCS)

if [ "$fail" -ne 0 ]; then
  echo "docs check failed"
  exit 1
fi
echo "docs check ok: links resolve, mentioned CLI flags exist"
