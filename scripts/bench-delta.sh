#!/usr/bin/env bash
# bench-delta.sh — print a benchstat-style old/new/delta table comparing
# a BENCH_PR7.json trajectory point against the PR6 baseline embedded in
# the same file. CI runs this after bench.sh so the job log carries the
# comparison next to the artifact.
#
# Usage: scripts/bench-delta.sh [BENCH_PR7.json]
set -euo pipefail
cd "$(dirname "$0")/.."

FILE="${1:-BENCH_PR7.json}"
python3 - "$FILE" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
cur, base = doc["current"], doc["baseline_pr6"]

# metric key -> (label, higher_is_better)
rows = [
    ("sim_instr_per_s", "sim-instr/s", True),
    ("sims_per_s", "sims/s", True),
    ("events_per_s", "events/s", True),
    ("sim_throughput_allocs_per_op", "sim allocs/op", False),
    ("step_ndpage_ns_per_op", "step ns/op (NDPage)", False),
    ("step_mlp_ns_per_op", "step ns/op (MLP)", False),
    ("sweep_serial_instr_per_s", "sweep serial instr/s", True),
    ("sweep_sharded_instr_per_s", "sweep sharded instr/s", True),
]

print(f"{'metric':<24} {'PR6 base':>14} {'PR7':>14} {'delta':>9}")
print("-" * 64)
for key, label, up in rows:
    if key not in cur or key not in base:
        continue
    old, new = float(base[key]), float(cur[key])
    if old == 0:
        delta = "n/a"
    else:
        pct = (new - old) / old * 100
        better = pct > 0 if up else pct < 0
        mark = "+" if pct >= 0 else ""
        delta = f"{mark}{pct:.1f}%" + ("" if better or abs(pct) < 0.05 else " !")
    print(f"{label:<24} {old:>14,.0f} {new:>14,.0f} {delta:>9}")

extra = [
    ("sim_instr_per_s_nopgo", "sim-instr/s (PGO off)"),
    ("lookup_dense_ns", "Flattened lookup dense ns"),
    ("lookup_sparse_ns", "Flattened lookup sparse ns"),
    ("touch_cached_ns", "Touch hit cached ns"),
    ("touch_present_ns", "Touch hit Present ns"),
    ("bytes_per_mapped_page", "metadata bytes/page"),
    ("peak_rss_kb", "peak RSS (KB)"),
]
print()
print("PR7-only metrics (no PR6 counterpart):")
for key, label in extra:
    if key in cur:
        print(f"  {label:<28} {float(cur[key]):>14,.1f}")

sp = doc.get("speedup_vs_pr6", {})
if sp:
    print()
    print("speedup vs PR6: " + ", ".join(f"{k}={v}" for k, v in sp.items()))
EOF
