#!/usr/bin/env bash
# bench.sh — run the performance benchmark suite and record the
# trajectory point for this tree into BENCH_PR6.json.
#
# Metrics recorded (see DESIGN.md "Performance"):
#   sim_instr_per_s    BenchmarkSimulatorThroughput (full runs, 4-core NDP/NDPage/bfs)
#   sims_per_s         BenchmarkRunSmall (build + warmup + measure per op)
#   events_per_s       BenchmarkEngineStep (calendar-queue schedule+dispatch)
#   sweep_*_instr_per_s BenchmarkSweepSerial / BenchmarkSweepSharded —
#                      aggregate simulated instructions per second for a
#                      replication sweep on one worker vs one shard per CPU
#   allocs_per_instr   BenchmarkStepThroughput/NDPage allocs/op divided by cores
#   *_allocs_per_op    raw allocs/op for the budget gates below
#
# Gates (the perf_opt contract — CI fails the bench job on violation):
#   allocation budgets   BenchmarkSimulatorThroughput <= SIM_ALLOC_BUDGET,
#                        BenchmarkStepThroughput*     <= STEP_ALLOC_BUDGET
#   events/s floor       events_per_s >= EVENTS_SPEEDUP_FLOOR x the PR4
#                        baseline (the calendar queue's scheduling speedup)
#   sim-instr/s floor    sim_instr_per_s >= SIM_SPEEDUP_FLOOR x the PR4
#                        baseline (end-to-end regression guard; the floor
#                        is below 1.0 because shared CI runners jitter by
#                        more than the effect size — see DESIGN.md 3c)
#   shard scaling floor  sharded/serial sweep-instr/s >= SHARD_SPEEDUP_FLOOR,
#                        enforced only when the machine has >= 2 CPUs
#                        (shards of a single CPU run sequentially, so the
#                        ratio is ~1.0 there by construction)
#
# Scale knobs (CI runs reduced): BENCHTIME_RUNS (full-run benchmarks),
# BENCHTIME_EVENTS (engine microbenchmark), BENCHTIME_STEPS (per-step
# benchmarks), BENCHTIME_SWEEPS (replication sweeps). OUT overrides the
# output path.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME_RUNS=${BENCHTIME_RUNS:-30x}
BENCHTIME_EVENTS=${BENCHTIME_EVENTS:-300000x}
BENCHTIME_STEPS=${BENCHTIME_STEPS:-30000x}
BENCHTIME_SWEEPS=${BENCHTIME_SWEEPS:-5x}
OUT=${OUT:-BENCH_PR6.json}
SIM_ALLOC_BUDGET=${SIM_ALLOC_BUDGET:-800}
STEP_ALLOC_BUDGET=${STEP_ALLOC_BUDGET:-2}
EVENTS_SPEEDUP_FLOOR=${EVENTS_SPEEDUP_FLOOR:-1.5}
SIM_SPEEDUP_FLOOR=${SIM_SPEEDUP_FLOOR:-0.80}
SHARD_SPEEDUP_FLOOR=${SHARD_SPEEDUP_FLOOR:-1.5}

runs=$(go test -run=NONE -bench='BenchmarkSimulatorThroughput|BenchmarkRunSmall' \
	-benchmem -benchtime "$BENCHTIME_RUNS" . )
events=$(go test -run=NONE -bench='BenchmarkEngineStep$' \
	-benchmem -benchtime "$BENCHTIME_EVENTS" . )
steps=$(go test -run=NONE -bench='BenchmarkStepThroughput' \
	-benchmem -benchtime "$BENCHTIME_STEPS" ./internal/sim )
sweeps=$(go test -run=NONE -bench='BenchmarkSweep(Serial|Sharded)' \
	-benchmem -benchtime "$BENCHTIME_SWEEPS" . )
printf '%s\n%s\n%s\n%s\n' "$runs" "$events" "$steps" "$sweeps"

# metric BENCH_REGEX UNIT <<< output: value of the column whose unit
# label follows it on the matching benchmark line.
metric() {
	awk -v bench="$1" -v unit="$2" \
		'$1 ~ bench { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }'
}

sim_instr=$(metric '^BenchmarkSimulatorThroughput' 'sim-instr/s' <<<"$runs")
sim_allocs=$(metric '^BenchmarkSimulatorThroughput' 'allocs/op' <<<"$runs")
sims=$(metric '^BenchmarkRunSmall' 'sims/s' <<<"$runs")
evps=$(metric '^BenchmarkEngineStep' 'events/s' <<<"$events")
ev_allocs=$(metric '^BenchmarkEngineStep' 'allocs/op' <<<"$events")
step_ndpage_ns=$(metric '^BenchmarkStepThroughput/NDPage' 'ns/op' <<<"$steps")
step_ndpage_allocs=$(metric '^BenchmarkStepThroughput/NDPage' 'allocs/op' <<<"$steps")
step_cores=$(metric '^BenchmarkStepThroughput/NDPage' 'cores' <<<"$steps")
mlp_ns=$(metric '^BenchmarkStepThroughputMLP' 'ns/op' <<<"$steps")
mlp_allocs=$(metric '^BenchmarkStepThroughputMLP' 'allocs/op' <<<"$steps")
sweep_serial=$(metric '^BenchmarkSweepSerial' 'sweep-instr/s' <<<"$sweeps")
sweep_sharded=$(metric '^BenchmarkSweepSharded' 'sweep-instr/s' <<<"$sweeps")

for v in sim_instr sim_allocs sims evps step_ndpage_allocs mlp_allocs \
	sweep_serial sweep_sharded; do
	if [ -z "${!v}" ]; then
		echo "bench.sh: failed to parse $v from benchmark output" >&2
		exit 1
	fi
done

allocs_per_instr=$(awk -v a="$step_ndpage_allocs" -v c="${step_cores:-4}" \
	'BEGIN { printf "%.4f", a / c }')
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
ns_per_dispatch=$(awk -v e="$evps" 'BEGIN { printf "%.1f", 1e9 / e }')
events_x=$(awk -v a="$evps" 'BEGIN { printf "%.2f", a / 11580996 }')
sim_instr_x=$(awk -v a="$sim_instr" 'BEGIN { printf "%.2f", a / 5109299 }')
shard_x=$(awk -v a="$sweep_sharded" -v b="$sweep_serial" \
	'BEGIN { printf "%.2f", a / b }')

# Provenance: the measured tree, with +dirty when it differs from HEAD
# (e.g. a pre-commit run — the numbers are NOT HEAD's).
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if ! git diff --quiet HEAD 2>/dev/null; then
	commit="$commit+dirty"
fi
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# The baseline block is the PR4 head measured with that PR's script at
# its default scales on the same reference machine (committed as
# BENCH_PR4.json), so the trajectory file always carries its own
# before/after comparison.
cat > "$OUT" <<EOF
{
  "benchmark": "PR6 calendar-queue engine + sharded replication sweeps",
  "commit": "$commit",
  "generated_utc": "$date",
  "go": "$(go env GOVERSION)",
  "cpus": $cpus,
  "current": {
    "sim_instr_per_s": $sim_instr,
    "sims_per_s": $sims,
    "events_per_s": $evps,
    "ns_per_dispatch": $ns_per_dispatch,
    "engine_event_allocs_per_op": ${ev_allocs:-0},
    "allocs_per_instr": $allocs_per_instr,
    "sim_throughput_allocs_per_op": $sim_allocs,
    "step_ndpage_ns_per_op": ${step_ndpage_ns:-0},
    "step_mlp_ns_per_op": ${mlp_ns:-0},
    "step_mlp_allocs_per_op": $mlp_allocs,
    "sweep_serial_instr_per_s": $sweep_serial,
    "sweep_sharded_instr_per_s": $sweep_sharded
  },
  "speedup_vs_pr4": {
    "events_per_s_x": $events_x,
    "sim_instr_per_s_x": $sim_instr_x,
    "sweep_sharded_over_serial_x": $shard_x
  },
  "baseline_pr4": {
    "commit": "5fe36c3+dirty",
    "sim_instr_per_s": 5109299,
    "sims_per_s": 51.92,
    "events_per_s": 11580996,
    "engine_event_allocs_per_op": 0,
    "allocs_per_instr": 0.0000,
    "sim_throughput_allocs_per_op": 655,
    "step_ndpage_ns_per_op": 1185,
    "step_mlp_ns_per_op": 1090,
    "step_mlp_allocs_per_op": 0
  },
  "gates": {
    "sim_throughput_allocs_per_op": $SIM_ALLOC_BUDGET,
    "step_allocs_per_op": $STEP_ALLOC_BUDGET,
    "events_speedup_floor": $EVENTS_SPEEDUP_FLOOR,
    "sim_instr_speedup_floor": $SIM_SPEEDUP_FLOOR,
    "shard_speedup_floor": $SHARD_SPEEDUP_FLOOR,
    "shard_gate_enforced": $([ "$cpus" -ge 2 ] && echo true || echo false)
  }
}
EOF
echo "wrote $OUT"

fail=0
check_budget() { # name actual budget
	if awk -v a="$2" -v b="$3" 'BEGIN { exit !(a > b) }'; then
		echo "bench.sh: BUDGET EXCEEDED: $1 = $2 allocs/op (budget $3)" >&2
		fail=1
	fi
}
check_floor() { # name ratio floor
	if awk -v a="$2" -v b="$3" 'BEGIN { exit !(a < b) }'; then
		echo "bench.sh: FLOOR MISSED: $1 = ${2}x (floor ${3}x)" >&2
		fail=1
	fi
}
check_budget BenchmarkSimulatorThroughput "$sim_allocs" "$SIM_ALLOC_BUDGET"
while read -r name allocs; do
	[ -n "$allocs" ] && check_budget "$name" "$allocs" "$STEP_ALLOC_BUDGET"
done < <(awk '/^BenchmarkStepThroughput/ { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $1, $i }' <<<"$steps")
check_floor "events/s vs PR4" "$events_x" "$EVENTS_SPEEDUP_FLOOR"
check_floor "sim-instr/s vs PR4" "$sim_instr_x" "$SIM_SPEEDUP_FLOOR"
if [ "$cpus" -ge 2 ]; then
	check_floor "sharded/serial sweep" "$shard_x" "$SHARD_SPEEDUP_FLOOR"
else
	echo "bench.sh: note: 1 CPU — shard scaling gate skipped (ratio ${shard_x}x recorded)"
fi
exit $fail
