#!/usr/bin/env bash
# bench.sh — run the performance benchmark suite and record the
# trajectory point for this tree into BENCH_PR4.json.
#
# Metrics recorded (see DESIGN.md "Performance"):
#   sim_instr_per_s   BenchmarkSimulatorThroughput (full runs, 4-core NDP/NDPage/bfs)
#   sims_per_s        BenchmarkRunSmall (build + warmup + measure per op)
#   events_per_s      BenchmarkEngineStep (typed-event schedule+dispatch)
#   allocs_per_instr  BenchmarkStepThroughput/NDPage allocs/op divided by cores —
#                     the steady-state measured-instruction-path allocation rate
#   *_allocs_per_op   raw allocs/op for the budget gates below
#
# Allocation budgets (the perf_opt contract — CI fails the bench job on
# regression):
#   BenchmarkSimulatorThroughput  <= SIM_ALLOC_BUDGET  (per full simulation,
#                                    dominated by machine construction)
#   BenchmarkStepThroughput/*     <= STEP_ALLOC_BUDGET (per 4-instruction step,
#                                    blocking path; ~0 in steady state)
#   BenchmarkStepThroughputMLP    <= STEP_ALLOC_BUDGET (non-blocking path)
#
# Scale knobs (CI runs reduced): BENCHTIME_RUNS (full-run benchmarks),
# BENCHTIME_EVENTS (engine microbenchmark), BENCHTIME_STEPS (per-step
# benchmarks). OUT overrides the output path.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME_RUNS=${BENCHTIME_RUNS:-30x}
BENCHTIME_EVENTS=${BENCHTIME_EVENTS:-300000x}
BENCHTIME_STEPS=${BENCHTIME_STEPS:-30000x}
OUT=${OUT:-BENCH_PR4.json}
SIM_ALLOC_BUDGET=${SIM_ALLOC_BUDGET:-800}
STEP_ALLOC_BUDGET=${STEP_ALLOC_BUDGET:-2}

runs=$(go test -run=NONE -bench='BenchmarkSimulatorThroughput|BenchmarkRunSmall' \
	-benchmem -benchtime "$BENCHTIME_RUNS" . )
events=$(go test -run=NONE -bench='BenchmarkEngineStep$' \
	-benchmem -benchtime "$BENCHTIME_EVENTS" . )
steps=$(go test -run=NONE -bench='BenchmarkStepThroughput' \
	-benchmem -benchtime "$BENCHTIME_STEPS" ./internal/sim )
printf '%s\n%s\n%s\n' "$runs" "$events" "$steps"

# metric BENCH_REGEX UNIT <<< output: value of the column whose unit
# label follows it on the matching benchmark line.
metric() {
	awk -v bench="$1" -v unit="$2" \
		'$1 ~ bench { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }'
}

sim_instr=$(metric '^BenchmarkSimulatorThroughput' 'sim-instr/s' <<<"$runs")
sim_allocs=$(metric '^BenchmarkSimulatorThroughput' 'allocs/op' <<<"$runs")
sims=$(metric '^BenchmarkRunSmall' 'sims/s' <<<"$runs")
evps=$(metric '^BenchmarkEngineStep' 'events/s' <<<"$events")
ev_allocs=$(metric '^BenchmarkEngineStep' 'allocs/op' <<<"$events")
step_ndpage_ns=$(metric '^BenchmarkStepThroughput/NDPage' 'ns/op' <<<"$steps")
step_ndpage_allocs=$(metric '^BenchmarkStepThroughput/NDPage' 'allocs/op' <<<"$steps")
step_cores=$(metric '^BenchmarkStepThroughput/NDPage' 'cores' <<<"$steps")
mlp_ns=$(metric '^BenchmarkStepThroughputMLP' 'ns/op' <<<"$steps")
mlp_allocs=$(metric '^BenchmarkStepThroughputMLP' 'allocs/op' <<<"$steps")

for v in sim_instr sim_allocs sims evps step_ndpage_allocs mlp_allocs; do
	if [ -z "${!v}" ]; then
		echo "bench.sh: failed to parse $v from benchmark output" >&2
		exit 1
	fi
done

allocs_per_instr=$(awk -v a="$step_ndpage_allocs" -v c="${step_cores:-4}" \
	'BEGIN { printf "%.4f", a / c }')

# Provenance: the measured tree, with +dirty when it differs from HEAD
# (e.g. a pre-commit run — the numbers are NOT HEAD's).
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if ! git diff --quiet HEAD 2>/dev/null; then
	commit="$commit+dirty"
fi
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# The baseline block is the pre-PR4 main (PR 3 head) measured with this
# script's default scales on the same reference machine, recorded so the
# trajectory file always carries its own before/after comparison.
cat > "$OUT" <<EOF
{
  "benchmark": "PR4 zero-allocation hot path",
  "commit": "$commit",
  "generated_utc": "$date",
  "go": "$(go env GOVERSION)",
  "current": {
    "sim_instr_per_s": $sim_instr,
    "sims_per_s": $sims,
    "events_per_s": $evps,
    "engine_event_allocs_per_op": ${ev_allocs:-0},
    "allocs_per_instr": $allocs_per_instr,
    "sim_throughput_allocs_per_op": $sim_allocs,
    "step_ndpage_ns_per_op": ${step_ndpage_ns:-0},
    "step_mlp_ns_per_op": ${mlp_ns:-0},
    "step_mlp_allocs_per_op": $mlp_allocs
  },
  "baseline_pr3": {
    "commit": "5fe36c3",
    "sim_instr_per_s": 2933670,
    "sims_per_s": 30.79,
    "events_per_s": 8208517,
    "engine_event_allocs_per_op": 1,
    "allocs_per_instr": 0.0,
    "sim_throughput_allocs_per_op": 675,
    "step_ndpage_ns_per_op": 1595,
    "step_mlp_ns_per_op": 2888,
    "step_mlp_allocs_per_op": 8
  },
  "budgets": {
    "sim_throughput_allocs_per_op": $SIM_ALLOC_BUDGET,
    "step_allocs_per_op": $STEP_ALLOC_BUDGET
  }
}
EOF
echo "wrote $OUT"

fail=0
check_budget() { # name actual budget
	if awk -v a="$2" -v b="$3" 'BEGIN { exit !(a > b) }'; then
		echo "bench.sh: BUDGET EXCEEDED: $1 = $2 allocs/op (budget $3)" >&2
		fail=1
	fi
}
check_budget BenchmarkSimulatorThroughput "$sim_allocs" "$SIM_ALLOC_BUDGET"
while read -r name allocs; do
	[ -n "$allocs" ] && check_budget "$name" "$allocs" "$STEP_ALLOC_BUDGET"
done < <(awk '/^BenchmarkStepThroughput/ { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $1, $i }' <<<"$steps")
exit $fail
