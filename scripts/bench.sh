#!/usr/bin/env bash
# bench.sh — run the performance benchmark suite and record the
# trajectory point for this tree into BENCH_PR7.json.
#
# The suite runs twice where it matters: once with PGO off and once
# consuming the committed profile (cmd/ndpsim/default.pgo, regenerated
# by scripts/pgo.sh), so the file records the PGO delta explicitly.
#
# Metrics recorded (see DESIGN.md "Performance" and section 3d):
#   sim_instr_per_s        BenchmarkSimulatorThroughput, PGO-on build
#   sim_instr_per_s_nopgo  same benchmark, -pgo=off build
#   pgo_speedup_x          the ratio of the two
#   sims_per_s             BenchmarkRunSmall (build + warmup + measure)
#   events_per_s           BenchmarkEngineStep (calendar-queue dispatch)
#   sweep_*_instr_per_s    BenchmarkSweepSerial / BenchmarkSweepSharded
#   lookup_dense_ns        BenchmarkFlattenedLookup/dense
#   lookup_sparse_ns       BenchmarkFlattenedLookup/sparse (lazy chunks)
#   touch_cached_ns        BenchmarkTouchHit/cached (positive VPN cache)
#   touch_present_ns       BenchmarkTouchHit/present (Table.Present path)
#   bytes_per_mapped_page  BenchmarkFlattenedReferenceSweep metadata/page
#   peak_rss_kb            max RSS of the reference ndpsim sweep
#                          (via /usr/bin/time; 0 when unavailable)
#
# Gates (the perf_opt contract — CI fails the bench job on violation):
#   allocation budgets   BenchmarkSimulatorThroughput <= SIM_ALLOC_BUDGET
#                        (raised over PR6: lazy chunk materialization
#                        converts two slab allocations per flat node into
#                        per-chunk allocations — more allocs, ~1.2 MB less
#                        resident per node); BenchmarkStepThroughput* and
#                        the lookup/touch microbenchmarks <= STEP_ALLOC_BUDGET
#   events/s floor       events_per_s >= EVENTS_SPEEDUP_FLOOR x PR6
#   sim-instr/s floor    sim_instr_per_s >= SIM_SPEEDUP_FLOOR x PR6
#                        (regression guard below 1.0: shared CI runners
#                        jitter by more than the effect size, DESIGN.md 3c;
#                        the honest same-box ratio is recorded separately)
#   metadata budget      bytes_per_mapped_page <= META_BYTES_BUDGET
#   shard scaling floor  sharded/serial >= SHARD_SPEEDUP_FLOOR (>= 2 CPUs)
#
# Scale knobs (CI runs reduced): BENCHTIME_RUNS, BENCHTIME_EVENTS,
# BENCHTIME_STEPS, BENCHTIME_SWEEPS, BENCHTIME_MICRO. OUT overrides the
# output path. SKIP_NOPGO=1 skips the PGO-off pass (records 0).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME_RUNS=${BENCHTIME_RUNS:-30x}
BENCHTIME_EVENTS=${BENCHTIME_EVENTS:-300000x}
BENCHTIME_STEPS=${BENCHTIME_STEPS:-30000x}
BENCHTIME_SWEEPS=${BENCHTIME_SWEEPS:-5x}
BENCHTIME_MICRO=${BENCHTIME_MICRO:-2000000x}
OUT=${OUT:-BENCH_PR7.json}
SIM_ALLOC_BUDGET=${SIM_ALLOC_BUDGET:-1200}
STEP_ALLOC_BUDGET=${STEP_ALLOC_BUDGET:-2}
EVENTS_SPEEDUP_FLOOR=${EVENTS_SPEEDUP_FLOOR:-0.80}
SIM_SPEEDUP_FLOOR=${SIM_SPEEDUP_FLOOR:-0.80}
SHARD_SPEEDUP_FLOOR=${SHARD_SPEEDUP_FLOOR:-1.5}
META_BYTES_BUDGET=${META_BYTES_BUDGET:-256}
PGO=$PWD/cmd/ndpsim/default.pgo

runs=$(go test -run=NONE -bench='BenchmarkSimulatorThroughput|BenchmarkRunSmall' \
	-benchmem -benchtime "$BENCHTIME_RUNS" -pgo="$PGO" . )
if [ "${SKIP_NOPGO:-0}" = 1 ]; then
	runs_nopgo=""
else
	runs_nopgo=$(go test -run=NONE -bench='BenchmarkSimulatorThroughput$' \
		-benchmem -benchtime "$BENCHTIME_RUNS" -pgo=off . )
fi
# The engine microbenchmark compiles WITHOUT the profile: default.pgo
# is shaped by full simulations, whose enqueue mix differs from the
# synthetic 64-actor storm, and the misfit shows up as a few percent of
# noise in the one number meant to track the queue itself. PR6's
# baseline was also measured without PGO, so this keeps the comparison
# apples-to-apples.
events=$(go test -run=NONE -bench='BenchmarkEngineStep$' \
	-benchmem -benchtime "$BENCHTIME_EVENTS" -pgo=off . )
steps=$(go test -run=NONE -bench='BenchmarkStepThroughput' \
	-benchmem -benchtime "$BENCHTIME_STEPS" -pgo="$PGO" ./internal/sim )
sweeps=$(go test -run=NONE -bench='BenchmarkSweep(Serial|Sharded)' \
	-benchmem -benchtime "$BENCHTIME_SWEEPS" -pgo="$PGO" . )
micro=$(go test -run=NONE -bench='BenchmarkFlattenedLookup|BenchmarkTouchHit' \
	-benchmem -benchtime "$BENCHTIME_MICRO" -pgo="$PGO" \
	./internal/pagetable ./internal/osmm )
meta=$(go test -run=NONE -bench='BenchmarkFlattenedReferenceSweep' \
	-benchmem -benchtime 5x -pgo="$PGO" ./internal/pagetable )
printf '%s\n%s\n%s\n%s\n%s\n%s\n%s\n' \
	"$runs" "$runs_nopgo" "$events" "$steps" "$sweeps" "$micro" "$meta"

# Peak RSS of the reference sweep: one full ndpsim NDPage/bfs run,
# measured with GNU time when available, else getrusage(RUSAGE_CHILDREN)
# via python3 (ru_maxrss is KB on Linux). 0 when neither exists.
peak_rss=0
go build -o /tmp/ndpsim-bench ./cmd/ndpsim
sweep_cmd=(/tmp/ndpsim-bench -mech NDPage -workload bfs -instructions 300000)
if [ -x /usr/bin/time ]; then
	peak_rss=$(/usr/bin/time -v "${sweep_cmd[@]}" 2>&1 >/dev/null |
		awk '/Maximum resident set size/ { print $NF }' || echo 0)
elif command -v python3 >/dev/null; then
	peak_rss=$(python3 -c '
import resource, subprocess, sys
subprocess.run(sys.argv[1:], stdout=subprocess.DEVNULL, check=True)
print(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)' \
		"${sweep_cmd[@]}" || echo 0)
fi
peak_rss=${peak_rss:-0}
rm -f /tmp/ndpsim-bench

# metric BENCH_REGEX UNIT <<< output: value of the column whose unit
# label follows it on the matching benchmark line.
metric() {
	awk -v bench="$1" -v unit="$2" \
		'$1 ~ bench { for (i = 2; i < NF; i++) if ($(i+1) == unit) { print $i; exit } }'
}

sim_instr=$(metric '^BenchmarkSimulatorThroughput' 'sim-instr/s' <<<"$runs")
sim_allocs=$(metric '^BenchmarkSimulatorThroughput' 'allocs/op' <<<"$runs")
sims=$(metric '^BenchmarkRunSmall' 'sims/s' <<<"$runs")
sim_instr_nopgo=$(metric '^BenchmarkSimulatorThroughput' 'sim-instr/s' <<<"$runs_nopgo")
sim_instr_nopgo=${sim_instr_nopgo:-0}
evps=$(metric '^BenchmarkEngineStep' 'events/s' <<<"$events")
ev_allocs=$(metric '^BenchmarkEngineStep' 'allocs/op' <<<"$events")
step_ndpage_ns=$(metric '^BenchmarkStepThroughput/NDPage' 'ns/op' <<<"$steps")
step_ndpage_allocs=$(metric '^BenchmarkStepThroughput/NDPage' 'allocs/op' <<<"$steps")
step_cores=$(metric '^BenchmarkStepThroughput/NDPage' 'cores' <<<"$steps")
mlp_ns=$(metric '^BenchmarkStepThroughputMLP' 'ns/op' <<<"$steps")
mlp_allocs=$(metric '^BenchmarkStepThroughputMLP' 'allocs/op' <<<"$steps")
sweep_serial=$(metric '^BenchmarkSweepSerial' 'sweep-instr/s' <<<"$sweeps")
sweep_sharded=$(metric '^BenchmarkSweepSharded' 'sweep-instr/s' <<<"$sweeps")
lookup_dense=$(metric '^BenchmarkFlattenedLookup/dense' 'ns/op' <<<"$micro")
lookup_sparse=$(metric '^BenchmarkFlattenedLookup/sparse' 'ns/op' <<<"$micro")
touch_cached=$(metric '^BenchmarkTouchHit/cached' 'ns/op' <<<"$micro")
touch_present=$(metric '^BenchmarkTouchHit/present' 'ns/op' <<<"$micro")
bytes_page=$(metric '^BenchmarkFlattenedReferenceSweep' 'bytes/page' <<<"$meta")

for v in sim_instr sim_allocs sims evps step_ndpage_allocs mlp_allocs \
	sweep_serial sweep_sharded lookup_dense lookup_sparse \
	touch_cached touch_present bytes_page; do
	if [ -z "${!v}" ]; then
		echo "bench.sh: failed to parse $v from benchmark output" >&2
		exit 1
	fi
done

allocs_per_instr=$(awk -v a="$step_ndpage_allocs" -v c="${step_cores:-4}" \
	'BEGIN { printf "%.4f", a / c }')
cpus=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
ns_per_dispatch=$(awk -v e="$evps" 'BEGIN { printf "%.1f", 1e9 / e }')
events_x=$(awk -v a="$evps" 'BEGIN { printf "%.2f", a / 20567381 }')
sim_instr_x=$(awk -v a="$sim_instr" 'BEGIN { printf "%.2f", a / 4747309 }')
pgo_x=$(awk -v a="$sim_instr" -v b="$sim_instr_nopgo" \
	'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
shard_x=$(awk -v a="$sweep_sharded" -v b="$sweep_serial" \
	'BEGIN { printf "%.2f", a / b }')

# Provenance: the measured tree, with +dirty when it differs from HEAD
# (e.g. a pre-commit run — the numbers are NOT HEAD's).
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if ! git diff --quiet HEAD 2>/dev/null; then
	commit="$commit+dirty"
fi
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

# The baseline block is the PR6 head measured with that PR's script at
# its default scales on the same reference machine (committed as
# BENCH_PR6.json), so the trajectory file always carries its own
# before/after comparison.
cat > "$OUT" <<EOF
{
  "benchmark": "PR7 bit-packed lazy page-table metadata + PGO",
  "commit": "$commit",
  "generated_utc": "$date",
  "go": "$(go env GOVERSION)",
  "cpus": $cpus,
  "current": {
    "sim_instr_per_s": $sim_instr,
    "sim_instr_per_s_nopgo": $sim_instr_nopgo,
    "sims_per_s": $sims,
    "events_per_s": $evps,
    "ns_per_dispatch": $ns_per_dispatch,
    "engine_event_allocs_per_op": ${ev_allocs:-0},
    "allocs_per_instr": $allocs_per_instr,
    "sim_throughput_allocs_per_op": $sim_allocs,
    "step_ndpage_ns_per_op": ${step_ndpage_ns:-0},
    "step_mlp_ns_per_op": ${mlp_ns:-0},
    "step_mlp_allocs_per_op": $mlp_allocs,
    "sweep_serial_instr_per_s": $sweep_serial,
    "sweep_sharded_instr_per_s": $sweep_sharded,
    "lookup_dense_ns": $lookup_dense,
    "lookup_sparse_ns": $lookup_sparse,
    "touch_cached_ns": $touch_cached,
    "touch_present_ns": $touch_present,
    "bytes_per_mapped_page": $bytes_page,
    "peak_rss_kb": $peak_rss
  },
  "speedup_vs_pr6": {
    "events_per_s_x": $events_x,
    "sim_instr_per_s_x": $sim_instr_x,
    "pgo_speedup_x": $pgo_x,
    "sweep_sharded_over_serial_x": $shard_x
  },
  "baseline_pr6": {
    "commit": "93a6fb4+dirty",
    "sim_instr_per_s": 4747309,
    "sims_per_s": 54.10,
    "events_per_s": 20567381,
    "engine_event_allocs_per_op": 0,
    "allocs_per_instr": 0.0000,
    "sim_throughput_allocs_per_op": 761,
    "step_ndpage_ns_per_op": 1329,
    "step_mlp_ns_per_op": 1532,
    "step_mlp_allocs_per_op": 0,
    "sweep_serial_instr_per_s": 2796929,
    "sweep_sharded_instr_per_s": 2998211
  },
  "gates": {
    "sim_throughput_allocs_per_op": $SIM_ALLOC_BUDGET,
    "step_allocs_per_op": $STEP_ALLOC_BUDGET,
    "events_speedup_floor": $EVENTS_SPEEDUP_FLOOR,
    "sim_instr_speedup_floor": $SIM_SPEEDUP_FLOOR,
    "shard_speedup_floor": $SHARD_SPEEDUP_FLOOR,
    "meta_bytes_budget": $META_BYTES_BUDGET,
    "shard_gate_enforced": $([ "$cpus" -ge 2 ] && echo true || echo false)
  }
}
EOF
echo "wrote $OUT"

fail=0
check_budget() { # name actual budget
	if awk -v a="$2" -v b="$3" 'BEGIN { exit !(a > b) }'; then
		echo "bench.sh: BUDGET EXCEEDED: $1 = $2 (budget $3)" >&2
		fail=1
	fi
}
check_floor() { # name ratio floor
	if awk -v a="$2" -v b="$3" 'BEGIN { exit !(a < b) }'; then
		echo "bench.sh: FLOOR MISSED: $1 = ${2}x (floor ${3}x)" >&2
		fail=1
	fi
}
check_budget BenchmarkSimulatorThroughput "$sim_allocs" "$SIM_ALLOC_BUDGET"
while read -r name allocs; do
	[ -n "$allocs" ] && check_budget "$name" "$allocs" "$STEP_ALLOC_BUDGET"
done < <(awk '/^BenchmarkStepThroughput/ { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $1, $i }' <<<"$steps")
while read -r name allocs; do
	[ -n "$allocs" ] && check_budget "$name (steady-state)" "$allocs" "$STEP_ALLOC_BUDGET"
done < <(awk '/^BenchmarkFlattenedLookup|^BenchmarkTouchHit/ { for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") print $1, $i }' <<<"$micro")
check_budget "bytes_per_mapped_page" "$bytes_page" "$META_BYTES_BUDGET"
check_floor "events/s vs PR6" "$events_x" "$EVENTS_SPEEDUP_FLOOR"
check_floor "sim-instr/s vs PR6" "$sim_instr_x" "$SIM_SPEEDUP_FLOOR"
if [ "$cpus" -ge 2 ]; then
	check_floor "sharded/serial sweep" "$shard_x" "$SHARD_SPEEDUP_FLOOR"
else
	echo "bench.sh: note: 1 CPU — shard scaling gate skipped (ratio ${shard_x}x recorded)"
fi
exit $fail
